use super::Layer;
use crate::{Error, Tensor};
use std::any::Any;

/// The rectified linear unit, `max(0, x)`.
///
/// # Example
///
/// ```
/// use scnn_nn::layers::{Layer, Relu};
/// use scnn_nn::Tensor;
///
/// # fn main() -> Result<(), scnn_nn::Error> {
/// let mut relu = Relu::new();
/// let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 2])?;
/// assert_eq!(relu.forward(&x, false)?.data(), &[0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone)]
pub struct Relu {
    mask_cache: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor, Error> {
        if training {
            self.mask_cache = input.data().iter().map(|&v| v > 0.0).collect();
        }
        Ok(input.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, Error> {
        if grad_output.len() != self.mask_cache.len() {
            return Err(Error::shape(
                format!("{} cached activations", self.mask_cache.len()),
                grad_output.shape(),
            ));
        }
        let data = grad_output
            .data()
            .iter()
            .zip(&self.mask_cache)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_output.shape())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// The paper's ternary sign activation with soft threshold τ (§IV-B,
/// §V-B): outputs `−1`, `0`, or `+1`.
///
/// `sign` has zero gradient almost everywhere, so training uses the
/// straight-through estimator: gradients pass unchanged where `|x| ≤ 1`
/// (hard-tanh clipping), which is how the base LeNet model learns a useful
/// first layer despite the hard activation.
///
/// Soft thresholding (Kim et al., DAC 2016) maps `|x| ≤ τ` to `0`,
/// suppressing the near-zero dot products where SC is least exact.
///
/// # Example
///
/// ```
/// use scnn_nn::layers::{Layer, Sign};
/// use scnn_nn::Tensor;
///
/// # fn main() -> Result<(), scnn_nn::Error> {
/// let mut sign = Sign::new(0.1);
/// let x = Tensor::from_vec(vec![-0.5, 0.05, 0.5], &[1, 3])?;
/// assert_eq!(sign.forward(&x, false)?.data(), &[-1.0, 0.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Sign {
    threshold: f32,
    input_cache: Option<Tensor>,
}

impl Sign {
    /// Creates a sign activation with soft threshold `threshold ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or not finite.
    pub fn new(threshold: f32) -> Self {
        assert!(threshold.is_finite() && threshold >= 0.0, "invalid threshold {threshold}");
        Self { threshold, input_cache: None }
    }

    /// The soft threshold τ.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }
}

impl Layer for Sign {
    fn name(&self) -> &'static str {
        "sign"
    }

    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor, Error> {
        if training {
            self.input_cache = Some(input.clone());
        }
        let t = self.threshold;
        Ok(input.map(|v| {
            if v > t {
                1.0
            } else if v < -t {
                -1.0
            } else {
                0.0
            }
        }))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, Error> {
        let input = self.input_cache.as_ref().ok_or_else(|| {
            Error::shape("forward(training=true) before backward", grad_output.shape())
        })?;
        if grad_output.shape() != input.shape() {
            return Err(Error::shape("gradient matching cached input", grad_output.shape()));
        }
        // Straight-through estimator with hard-tanh clipping.
        let data = grad_output
            .data()
            .iter()
            .zip(input.data())
            .map(|(&g, &x)| if x.abs() <= 1.0 { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_output.shape())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-2.0, 0.0, 3.0], &[3]).unwrap();
        assert_eq!(relu.forward(&x, false).unwrap().data(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap();
        let _ = relu.forward(&x, true).unwrap();
        let dx = relu.backward(&Tensor::filled(&[2], 1.0)).unwrap();
        assert_eq!(dx.data(), &[0.0, 1.0]);
        let mut fresh = Relu::new();
        assert!(fresh.backward(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn sign_ternary_output() {
        let mut sign = Sign::new(0.2);
        let x = Tensor::from_vec(vec![-0.5, -0.2, 0.0, 0.2, 0.5], &[5]).unwrap();
        let y = sign.forward(&x, false).unwrap();
        assert_eq!(y.data(), &[-1.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn sign_zero_threshold_is_pure_sign() {
        let mut sign = Sign::new(0.0);
        let x = Tensor::from_vec(vec![-0.001, 0.0, 0.001], &[3]).unwrap();
        assert_eq!(sign.forward(&x, false).unwrap().data(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn sign_straight_through_gradient() {
        let mut sign = Sign::new(0.1);
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.5, 2.0], &[4]).unwrap();
        let _ = sign.forward(&x, true).unwrap();
        let dx = sign.backward(&Tensor::filled(&[4], 1.0)).unwrap();
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid threshold")]
    fn sign_rejects_negative_threshold() {
        let _ = Sign::new(-0.1);
    }
}

//! Datasets: the MNIST IDX parser, the synthetic digit generator, and
//! chunked streaming access.
//!
//! The paper evaluates on MNIST (LeCun et al.). In an offline environment
//! the four IDX files may be unavailable, so [`load_or_synthesize`] falls
//! back to [`synthetic::generate`], a procedural stroke-rendered digit set
//! with the same geometry (28×28, 8-bit grayscale, labels 0–9). Every
//! experiment harness reports which source was used.
//!
//! For datasets too large to hold in memory, [`BatchSource`] provides
//! contiguous-chunk access ([`Dataset`] implements it; [`ChunkLoader`]
//! adapts a chunk-producing closure), and
//! [`Network::evaluate`](crate::Network::evaluate) consumes any such
//! source with byte-identical results.

mod idx;
mod source;
pub mod synthetic;

pub use idx::{load_mnist, parse_idx_images, parse_idx_labels};
pub use source::{BatchSource, ChunkLoader};

use crate::{Error, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::path::Path;

/// Image side length of MNIST and the synthetic set.
pub const IMAGE_SIDE: usize = 28;

/// An in-memory labeled dataset of fixed-shape `f32` items.
///
/// # Example
///
/// ```
/// use scnn_nn::data::Dataset;
///
/// # fn main() -> Result<(), scnn_nn::Error> {
/// let ds = Dataset::new(vec![0.0; 4 * 9], &[1, 3, 3], vec![0, 1, 2, 3])?;
/// assert_eq!(ds.len(), 4);
/// let (batch, labels) = ds.batch(&[0, 2])?;
/// assert_eq!(batch.shape(), &[2, 1, 3, 3]);
/// assert_eq!(labels, vec![0, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    data: Vec<f32>,
    item_shape: Vec<usize>,
    labels: Vec<u8>,
}

impl Dataset {
    /// Wraps flat data (`len × item_shape` elements) and per-item labels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDataset`] if the buffer length does not
    /// equal `labels.len() × product(item_shape)`.
    pub fn new(data: Vec<f32>, item_shape: &[usize], labels: Vec<u8>) -> Result<Self, Error> {
        let item_len: usize = item_shape.iter().product();
        if item_len == 0 || data.len() != labels.len() * item_len {
            return Err(Error::InvalidDataset {
                reason: format!(
                    "{} values cannot hold {} items of shape {item_shape:?}",
                    data.len(),
                    labels.len()
                ),
            });
        }
        Ok(Self { data, item_shape: item_shape.to_vec(), labels })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset holds no items.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Shape of one item (e.g. `[1, 28, 28]`).
    pub fn item_shape(&self) -> &[usize] {
        &self.item_shape
    }

    /// Elements per item.
    pub fn item_len(&self) -> usize {
        self.item_shape.iter().product()
    }

    /// Flat view of item `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn item(&self, index: usize) -> &[f32] {
        let n = self.item_len();
        &self.data[index * n..(index + 1) * n]
    }

    /// Label of item `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn label(&self, index: usize) -> u8 {
        self.labels[index]
    }

    /// All labels.
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// Number of classes (`max label + 1`), 0 when empty.
    pub fn num_classes(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| usize::from(m) + 1)
    }

    /// Gathers the given item indices into a `[batch, …item_shape]` tensor
    /// plus their labels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDataset`] if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> Result<(Tensor, Vec<u8>), Error> {
        let n = self.item_len();
        let mut data = Vec::with_capacity(indices.len() * n);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(Error::InvalidDataset {
                    reason: format!("index {i} out of range for {} items", self.len()),
                });
            }
            data.extend_from_slice(self.item(i));
            labels.push(self.labels[i]);
        }
        let mut shape = vec![indices.len()];
        shape.extend_from_slice(&self.item_shape);
        Ok((Tensor::from_vec(data, &shape)?, labels))
    }

    /// A new dataset containing only the first `count` items (or all, if
    /// fewer) — the "quick mode" subset used by the experiment harnesses.
    pub fn take(&self, count: usize) -> Dataset {
        let count = count.min(self.len());
        Dataset {
            data: self.data[..count * self.item_len()].to_vec(),
            item_shape: self.item_shape.clone(),
            labels: self.labels[..count].to_vec(),
        }
    }

    /// A deterministically shuffled copy.
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(&mut StdRng::seed_from_u64(seed));
        let n = self.item_len();
        let mut data = Vec::with_capacity(self.data.len());
        let mut labels = Vec::with_capacity(self.labels.len());
        for i in indices {
            data.extend_from_slice(&self.data[i * n..(i + 1) * n]);
            labels.push(self.labels[i]);
        }
        Dataset { data, item_shape: self.item_shape.clone(), labels }
    }

    /// Builds a dataset from per-item buffers (used for cached feature
    /// maps during retraining).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDataset`] on length inconsistencies.
    pub fn from_items(
        items: Vec<Vec<f32>>,
        item_shape: &[usize],
        labels: Vec<u8>,
    ) -> Result<Self, Error> {
        if items.len() != labels.len() {
            return Err(Error::InvalidDataset {
                reason: format!("{} items but {} labels", items.len(), labels.len()),
            });
        }
        let item_len: usize = item_shape.iter().product();
        let mut data = Vec::with_capacity(items.len() * item_len);
        for (i, item) in items.iter().enumerate() {
            if item.len() != item_len {
                return Err(Error::InvalidDataset {
                    reason: format!("item {i} has {} values, expected {item_len}", item.len()),
                });
            }
            data.extend_from_slice(item);
        }
        Self::new(data, item_shape, labels)
    }
}

/// Where [`load_or_synthesize`] got its data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSource {
    /// Parsed from real MNIST IDX files.
    Mnist,
    /// Procedurally generated (substitution 3 of `DESIGN.md`).
    Synthetic,
}

impl std::fmt::Display for DataSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataSource::Mnist => f.write_str("mnist"),
            DataSource::Synthetic => f.write_str("synthetic"),
        }
    }
}

/// Loads real MNIST from `dir` if the four IDX files are present, otherwise
/// generates a synthetic train/test pair of the requested sizes.
///
/// # Errors
///
/// Returns a parse error only if MNIST files are present but corrupt;
/// absence of the files is not an error.
pub fn load_or_synthesize(
    dir: &Path,
    train_size: usize,
    test_size: usize,
    seed: u64,
) -> Result<(Dataset, Dataset, DataSource), Error> {
    if let Some((train, test)) = load_mnist(dir)? {
        return Ok((train.take(train_size), test.take(test_size), DataSource::Mnist));
    }
    let train = synthetic::generate(train_size, seed);
    let test = synthetic::generate(test_size, seed ^ 0x5eed_7e57);
    Ok((train, test, DataSource::Synthetic))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_lengths() {
        assert!(Dataset::new(vec![0.0; 5], &[2], vec![0, 1]).is_err());
        assert!(Dataset::new(vec![0.0; 4], &[2], vec![0, 1]).is_ok());
        assert!(Dataset::new(vec![], &[0], vec![]).is_err());
    }

    #[test]
    fn item_and_label_access() {
        let ds = Dataset::new(vec![1.0, 2.0, 3.0, 4.0], &[2], vec![7, 9]).unwrap();
        assert_eq!(ds.item(1), &[3.0, 4.0]);
        assert_eq!(ds.label(0), 7);
        assert_eq!(ds.num_classes(), 10);
        assert_eq!(ds.item_len(), 2);
    }

    #[test]
    fn batch_gathers() {
        let ds = Dataset::new((0..12).map(|v| v as f32).collect(), &[3], vec![0, 1, 2, 3]).unwrap();
        let (x, labels) = ds.batch(&[3, 0]).unwrap();
        assert_eq!(x.shape(), &[2, 3]);
        assert_eq!(x.data(), &[9.0, 10.0, 11.0, 0.0, 1.0, 2.0]);
        assert_eq!(labels, vec![3, 0]);
        assert!(ds.batch(&[4]).is_err());
    }

    #[test]
    fn take_and_shuffle_preserve_pairing() {
        let ds =
            Dataset::new((0..20).map(|v| v as f32).collect(), &[2], (0..10).collect()).unwrap();
        let s = ds.shuffled(42);
        assert_eq!(s.len(), 10);
        for i in 0..10 {
            // Each shuffled item must still carry its own label: item j has
            // values [2j, 2j+1] and label j.
            let v = s.item(i)[0] as u8 / 2;
            assert_eq!(s.label(i), v);
        }
        let t = ds.take(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.item(2), &[4.0, 5.0]);
        assert_eq!(ds.take(99).len(), 10);
    }

    #[test]
    fn from_items_validates() {
        let items = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let ds = Dataset::from_items(items, &[2], vec![0, 1]).unwrap();
        assert_eq!(ds.item(1), &[3.0, 4.0]);
        assert!(Dataset::from_items(vec![vec![1.0]], &[2], vec![0]).is_err());
        assert!(Dataset::from_items(vec![vec![1.0, 2.0]], &[2], vec![0, 1]).is_err());
    }

    #[test]
    fn load_or_synthesize_falls_back() {
        let (train, test, source) =
            load_or_synthesize(Path::new("/nonexistent"), 20, 10, 1).unwrap();
        assert_eq!(source, DataSource::Synthetic);
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 10);
        assert_eq!(train.item_shape(), &[1, IMAGE_SIDE, IMAGE_SIDE]);
    }
}

//! Chunked dataset access for streaming evaluation.
//!
//! [`BatchSource`] is the capped-memory counterpart of [`Dataset`]: a
//! consumer asks for one contiguous range of items at a time and never
//! holds more than that range in memory. An in-memory [`Dataset`] is
//! trivially a `BatchSource`; a [`ChunkLoader`] produces chunks on demand
//! from a closure (decode a file chunk, synthesize items, compute
//! features); and `scnn-core`'s `FeatureSource` streams a hybrid
//! network's first-layer features without ever materializing the full
//! feature tensor.
//!
//! Evaluation pipelines ([`Network::evaluate`](crate::Network::evaluate))
//! consume any `BatchSource` through the [`parallel`](crate::parallel)
//! chunked map, and because ranges are contiguous and results are reduced
//! in range order, the outputs are byte-identical for every thread count
//! and for every source that yields the same items.

use super::Dataset;
use crate::{Error, Tensor};
use std::ops::Range;

/// A source of labeled fixed-shape items, consumed one contiguous chunk at
/// a time.
///
/// `Sync` is a supertrait: evaluation shares one source across the
/// parallel worker threads.
///
/// # Example
///
/// ```
/// use scnn_nn::data::{BatchSource, ChunkLoader, Dataset};
///
/// # fn main() -> Result<(), scnn_nn::Error> {
/// // A loader that synthesizes items on demand…
/// let streamed = ChunkLoader::new(4, &[2], |range| {
///     let data = range.clone().flat_map(|i| [i as f32, -(i as f32)]).collect();
///     Ok((data, range.map(|i| i as u8).collect()))
/// });
/// // …yields the same batches as the materialized dataset.
/// let data: Vec<f32> = (0..4).flat_map(|i| [i as f32, -(i as f32)]).collect();
/// let materialized = Dataset::new(data, &[2], vec![0, 1, 2, 3])?;
/// let (a, la) = streamed.batch_range(1..3)?;
/// let (b, lb) = materialized.batch_range(1..3)?;
/// assert_eq!(a.data(), b.data());
/// assert_eq!(la, lb);
/// # Ok(())
/// # }
/// ```
pub trait BatchSource: Sync {
    /// Number of items.
    fn len(&self) -> usize;

    /// Shape of one item (e.g. `[1, 28, 28]`).
    fn item_shape(&self) -> &[usize];

    /// Materializes items `range` as a `[range.len(), …item_shape]` tensor
    /// plus their labels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDataset`] for an out-of-range request, or a
    /// loader-specific error.
    fn batch_range(&self, range: Range<usize>) -> Result<(Tensor, Vec<u8>), Error>;

    /// Whether the source holds no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Elements per item.
    fn item_len(&self) -> usize {
        self.item_shape().iter().product()
    }

    /// Materializes the (not necessarily contiguous) items `indices` as a
    /// `[indices.len(), …item_shape]` tensor plus their labels — what a
    /// shuffled training pass needs from a streaming source.
    ///
    /// The default assembles the batch item by item through
    /// [`batch_range`](Self::batch_range), so index-seeded sources (fault
    /// injection keyed on the absolute item index) stay byte-identical
    /// with their contiguous reads; [`Dataset`] overrides it with its
    /// direct indexed gather.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDataset`] for an out-of-range index, or a
    /// loader-specific error.
    fn gather(&self, indices: &[usize]) -> Result<(Tensor, Vec<u8>), Error> {
        let item_len = self.item_len();
        let mut data = Vec::with_capacity(indices.len() * item_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            let (x, l) = self.batch_range(i..i + 1)?;
            data.extend_from_slice(x.data());
            labels.extend_from_slice(&l);
        }
        let mut shape = vec![indices.len()];
        shape.extend_from_slice(self.item_shape());
        Ok((Tensor::from_vec(data, &shape)?, labels))
    }
}

impl BatchSource for Dataset {
    fn len(&self) -> usize {
        Dataset::len(self)
    }

    fn item_shape(&self) -> &[usize] {
        Dataset::item_shape(self)
    }

    fn batch_range(&self, range: Range<usize>) -> Result<(Tensor, Vec<u8>), Error> {
        check_range(&range, Dataset::len(self))?;
        let n = Dataset::item_len(self);
        let data = self.data[range.start * n..range.end * n].to_vec();
        let labels = self.labels[range.clone()].to_vec();
        let mut shape = vec![range.len()];
        shape.extend_from_slice(&self.item_shape);
        Ok((Tensor::from_vec(data, &shape)?, labels))
    }

    fn gather(&self, indices: &[usize]) -> Result<(Tensor, Vec<u8>), Error> {
        self.batch(indices)
    }
}

/// Validates a chunk request against the source length.
fn check_range(range: &Range<usize>, len: usize) -> Result<(), Error> {
    if range.start > range.end || range.end > len {
        return Err(Error::InvalidDataset {
            reason: format!("range {range:?} out of bounds for {len} items"),
        });
    }
    Ok(())
}

/// A streaming chunk loader: produces each requested range through a
/// closure, so only one chunk of the (possibly huge) dataset exists in
/// memory at a time.
///
/// The closure receives the item range and returns the flat chunk data
/// (`range.len() × item_len` values) plus the chunk labels; the loader
/// validates both lengths. See the [trait example](BatchSource) and the
/// `streaming_chunks_match_materialized_dataset` property test.
#[derive(Debug, Clone)]
pub struct ChunkLoader<F> {
    len: usize,
    item_shape: Vec<usize>,
    loader: F,
}

impl<F> ChunkLoader<F>
where
    F: Fn(Range<usize>) -> Result<(Vec<f32>, Vec<u8>), Error> + Sync,
{
    /// A source of `len` items of shape `item_shape`, loaded chunk-wise by
    /// `loader`.
    pub fn new(len: usize, item_shape: &[usize], loader: F) -> Self {
        Self { len, item_shape: item_shape.to_vec(), loader }
    }
}

impl<F> BatchSource for ChunkLoader<F>
where
    F: Fn(Range<usize>) -> Result<(Vec<f32>, Vec<u8>), Error> + Sync,
{
    fn len(&self) -> usize {
        self.len
    }

    fn item_shape(&self) -> &[usize] {
        &self.item_shape
    }

    fn batch_range(&self, range: Range<usize>) -> Result<(Tensor, Vec<u8>), Error> {
        check_range(&range, self.len)?;
        let _decode = scnn_obs::span("data/chunk_decode");
        if scnn_obs::metrics_enabled() {
            scnn_obs::registry().counter("data/items_decoded").add(range.len() as u64);
        }
        let (data, labels) = (self.loader)(range.clone())?;
        let item_len: usize = self.item_shape.iter().product();
        if data.len() != range.len() * item_len || labels.len() != range.len() {
            return Err(Error::InvalidDataset {
                reason: format!(
                    "loader returned {} values / {} labels for range {range:?}",
                    data.len(),
                    labels.len()
                ),
            });
        }
        let mut shape = vec![range.len()];
        shape.extend_from_slice(&self.item_shape);
        Ok((Tensor::from_vec(data, &shape)?, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::new((0..24).map(|v| v as f32).collect(), &[3], vec![1, 2, 3, 4, 5, 6, 7, 8])
            .unwrap()
    }

    #[test]
    fn dataset_batch_range_matches_indexed_batch() {
        let ds = dataset();
        let (by_range, labels_range) = ds.batch_range(2..5).unwrap();
        let (by_index, labels_index) = ds.batch(&[2, 3, 4]).unwrap();
        assert_eq!(by_range.shape(), by_index.shape());
        assert_eq!(by_range.data(), by_index.data());
        assert_eq!(labels_range, labels_index);
        assert_eq!(BatchSource::item_len(&ds), 3);
        assert!(!BatchSource::is_empty(&ds));
    }

    #[test]
    fn ranges_are_validated() {
        let ds = dataset();
        assert!(ds.batch_range(6..9).is_err());
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = 5..2;
        assert!(ds.batch_range(reversed).is_err());
        assert!(ds.batch_range(8..8).is_ok()); // empty suffix chunk
    }

    #[test]
    fn gather_matches_indexed_batch_on_both_sources() {
        let ds = dataset();
        let loader = ChunkLoader::new(8, &[3], |range: Range<usize>| {
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for i in range {
                data.extend((0..3).map(|j| (i * 3 + j) as f32));
                labels.push(i as u8 + 1);
            }
            Ok((data, labels))
        });
        let indices = [5usize, 0, 3, 3, 7];
        let (expect, expect_labels) = ds.batch(&indices).unwrap();
        // The Dataset override and the per-item default assemble the same
        // batch, labels, and shape.
        let (a, la) = BatchSource::gather(&ds, &indices).unwrap();
        let (b, lb) = loader.gather(&indices).unwrap();
        assert_eq!(a.shape(), expect.shape());
        assert_eq!(a.data(), expect.data());
        assert_eq!(b.data(), expect.data());
        assert_eq!(la, expect_labels);
        assert_eq!(lb, expect_labels);
        // Out-of-range indices are rejected, empty gathers succeed.
        assert!(loader.gather(&[8]).is_err());
        assert_eq!(loader.gather(&[]).unwrap().1.len(), 0);
    }

    #[test]
    fn chunk_loader_streams_and_validates() {
        let ds = dataset();
        let loader = ChunkLoader::new(8, &[3], |range: Range<usize>| {
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for i in range {
                data.extend((0..3).map(|j| (i * 3 + j) as f32));
                labels.push(i as u8 + 1);
            }
            Ok((data, labels))
        });
        for range in [0..8, 3..5, 7..8] {
            let (a, la) = loader.batch_range(range.clone()).unwrap();
            let (b, lb) = ds.batch_range(range.clone()).unwrap();
            assert_eq!(a.data(), b.data(), "{range:?}");
            assert_eq!(la, lb, "{range:?}");
        }
        assert!(loader.batch_range(7..9).is_err());

        // A loader returning the wrong chunk size is rejected.
        let bad = ChunkLoader::new(4, &[3], |range: Range<usize>| {
            Ok((vec![0.0; 2], vec![0; range.len()]))
        });
        assert!(bad.batch_range(0..2).is_err());
    }
}

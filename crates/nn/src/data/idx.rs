//! Parser for the IDX file format used by the MNIST distribution
//! (`train-images-idx3-ubyte` etc.): a big-endian magic/dimension header
//! followed by raw `u8` payload.

use super::Dataset;
use crate::Error;
use std::path::Path;

fn be_u32(bytes: &[u8], offset: usize) -> Result<u32, Error> {
    bytes
        .get(offset..offset + 4)
        .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or_else(|| Error::ParseIdx { reason: format!("truncated header at byte {offset}") })
}

/// Parses an IDX3 image file (magic `0x00000803`) into normalized `[0, 1]`
/// pixel rows.
///
/// Returns `(pixels, count, rows, cols)` with `pixels.len() = count·rows·cols`.
///
/// # Errors
///
/// Returns [`Error::ParseIdx`] on a wrong magic number or truncated payload.
pub fn parse_idx_images(bytes: &[u8]) -> Result<(Vec<f32>, usize, usize, usize), Error> {
    let magic = be_u32(bytes, 0)?;
    if magic != 0x0000_0803 {
        return Err(Error::ParseIdx { reason: format!("bad image magic {magic:#010x}") });
    }
    let count = be_u32(bytes, 4)? as usize;
    let rows = be_u32(bytes, 8)? as usize;
    let cols = be_u32(bytes, 12)? as usize;
    // Checked: three u32 dimensions can overflow even a 64-bit usize, and
    // an adversarial header must parse-error, not wrap into a short slice.
    let expected = count.checked_mul(rows).and_then(|n| n.checked_mul(cols)).ok_or_else(|| {
        Error::ParseIdx { reason: format!("image dimensions {count}x{rows}x{cols} overflow") }
    })?;
    let payload = 16usize
        .checked_add(expected)
        .and_then(|end| bytes.get(16..end))
        .ok_or_else(|| Error::ParseIdx { reason: format!("expected {expected} pixels") })?;
    Ok((payload.iter().map(|&b| f32::from(b) / 255.0).collect(), count, rows, cols))
}

/// Parses an IDX1 label file (magic `0x00000801`).
///
/// # Errors
///
/// Returns [`Error::ParseIdx`] on a wrong magic number or truncated payload.
pub fn parse_idx_labels(bytes: &[u8]) -> Result<Vec<u8>, Error> {
    let magic = be_u32(bytes, 0)?;
    if magic != 0x0000_0801 {
        return Err(Error::ParseIdx { reason: format!("bad label magic {magic:#010x}") });
    }
    let count = be_u32(bytes, 4)? as usize;
    let payload = 8usize
        .checked_add(count)
        .and_then(|end| bytes.get(8..end))
        .ok_or_else(|| Error::ParseIdx { reason: format!("expected {count} labels") })?;
    Ok(payload.to_vec())
}

fn read_pair(dir: &Path, images: &str, labels: &str) -> Result<Option<Dataset>, Error> {
    let img_path = dir.join(images);
    let lbl_path = dir.join(labels);
    if !img_path.exists() || !lbl_path.exists() {
        return Ok(None);
    }
    let img_bytes = std::fs::read(&img_path)
        .map_err(|e| Error::ParseIdx { reason: format!("{}: {e}", img_path.display()) })?;
    let lbl_bytes = std::fs::read(&lbl_path)
        .map_err(|e| Error::ParseIdx { reason: format!("{}: {e}", lbl_path.display()) })?;
    let (pixels, count, rows, cols) = parse_idx_images(&img_bytes)?;
    let labels = parse_idx_labels(&lbl_bytes)?;
    if labels.len() != count {
        return Err(Error::ParseIdx {
            reason: format!("{count} images but {} labels", labels.len()),
        });
    }
    Ok(Some(Dataset::new(pixels, &[1, rows, cols], labels)?))
}

/// Loads the MNIST train/test pair from `dir` if the standard four files
/// are present (`train-images-idx3-ubyte`, `train-labels-idx1-ubyte`,
/// `t10k-images-idx3-ubyte`, `t10k-labels-idx1-ubyte`); returns `Ok(None)`
/// when absent.
///
/// # Errors
///
/// Returns [`Error::ParseIdx`] only for present-but-corrupt files.
pub fn load_mnist(dir: &Path) -> Result<Option<(Dataset, Dataset)>, Error> {
    let train = read_pair(dir, "train-images-idx3-ubyte", "train-labels-idx1-ubyte")?;
    let test = read_pair(dir, "t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte")?;
    Ok(match (train, test) {
        (Some(tr), Some(te)) => Some((tr, te)),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_idx3(count: usize, rows: usize, cols: usize) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(&0x0000_0803u32.to_be_bytes());
        v.extend_from_slice(&(count as u32).to_be_bytes());
        v.extend_from_slice(&(rows as u32).to_be_bytes());
        v.extend_from_slice(&(cols as u32).to_be_bytes());
        v.extend((0..count * rows * cols).map(|i| (i % 256) as u8));
        v
    }

    fn make_idx1(labels: &[u8]) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(&0x0000_0801u32.to_be_bytes());
        v.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        v.extend_from_slice(labels);
        v
    }

    #[test]
    fn parses_images() {
        let bytes = make_idx3(2, 3, 3);
        let (pixels, count, rows, cols) = parse_idx_images(&bytes).unwrap();
        assert_eq!((count, rows, cols), (2, 3, 3));
        assert_eq!(pixels.len(), 18);
        assert_eq!(pixels[0], 0.0);
        assert!((pixels[17] - 17.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn parses_labels() {
        let bytes = make_idx1(&[3, 1, 4]);
        assert_eq!(parse_idx_labels(&bytes).unwrap(), vec![3, 1, 4]);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = make_idx3(1, 2, 2);
        bytes[3] = 0x01; // corrupt the magic
        assert!(parse_idx_images(&bytes).is_err());
        let mut lbl = make_idx1(&[1]);
        lbl[3] = 0x03;
        assert!(parse_idx_labels(&lbl).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let mut bytes = make_idx3(2, 3, 3);
        bytes.truncate(bytes.len() - 1);
        assert!(parse_idx_images(&bytes).is_err());
        assert!(parse_idx_images(&bytes[..10]).is_err());
        let lbl = make_idx1(&[1, 2, 3]);
        assert!(parse_idx_labels(&lbl[..9]).is_err());
    }

    #[test]
    fn load_mnist_roundtrip_via_tempdir() {
        let dir = std::env::temp_dir().join(format!("scnn-idx-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("train-images-idx3-ubyte"), make_idx3(3, 4, 4)).unwrap();
        std::fs::write(dir.join("train-labels-idx1-ubyte"), make_idx1(&[0, 1, 2])).unwrap();
        std::fs::write(dir.join("t10k-images-idx3-ubyte"), make_idx3(2, 4, 4)).unwrap();
        std::fs::write(dir.join("t10k-labels-idx1-ubyte"), make_idx1(&[3, 4])).unwrap();
        let (train, test) = load_mnist(&dir).unwrap().expect("files present");
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 2);
        assert_eq!(train.item_shape(), &[1, 4, 4]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_mnist_absent_is_none() {
        assert!(load_mnist(Path::new("/definitely/not/here")).unwrap().is_none());
    }

    #[test]
    fn count_mismatch_is_error() {
        let dir = std::env::temp_dir().join(format!("scnn-idx-mismatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("train-images-idx3-ubyte"), make_idx3(3, 4, 4)).unwrap();
        std::fs::write(dir.join("train-labels-idx1-ubyte"), make_idx1(&[0, 1])).unwrap();
        std::fs::write(dir.join("t10k-images-idx3-ubyte"), make_idx3(1, 4, 4)).unwrap();
        std::fs::write(dir.join("t10k-labels-idx1-ubyte"), make_idx1(&[3])).unwrap();
        assert!(load_mnist(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Procedural MNIST-like digit generator (substitution 3 of `DESIGN.md`).
//!
//! Each digit 0–9 is defined as a set of stroke polylines in the unit
//! square. A sample applies a random affine jitter (rotation, scale,
//! translation), renders the strokes with a random pen thickness and
//! soft anti-aliased edges onto a 28×28 grid, adds pixel noise, and
//! quantizes to 8-bit levels — the same geometry and dynamic range as
//! MNIST, so every precision/retraining effect the paper measures is
//! exercised on identical code paths.

use super::{Dataset, IMAGE_SIDE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One stroke: a polyline through `(x, y)` points in the unit square
/// (y grows downward).
type Stroke = &'static [(f32, f32)];

/// Stroke description of each digit glyph.
fn glyph(digit: u8) -> &'static [Stroke] {
    const ZERO: &[Stroke] = &[&[
        (0.50, 0.14),
        (0.32, 0.22),
        (0.26, 0.42),
        (0.26, 0.60),
        (0.33, 0.80),
        (0.50, 0.86),
        (0.67, 0.80),
        (0.74, 0.60),
        (0.74, 0.42),
        (0.68, 0.22),
        (0.50, 0.14),
    ]];
    const ONE: &[Stroke] = &[&[(0.38, 0.28), (0.52, 0.14), (0.52, 0.86)]];
    const TWO: &[Stroke] = &[&[
        (0.28, 0.30),
        (0.33, 0.18),
        (0.50, 0.13),
        (0.67, 0.19),
        (0.71, 0.34),
        (0.58, 0.52),
        (0.30, 0.80),
        (0.74, 0.80),
    ]];
    const THREE: &[Stroke] = &[&[
        (0.30, 0.20),
        (0.50, 0.13),
        (0.68, 0.22),
        (0.64, 0.40),
        (0.47, 0.47),
        (0.66, 0.55),
        (0.71, 0.72),
        (0.52, 0.86),
        (0.30, 0.78),
    ]];
    const FOUR: &[Stroke] = &[&[(0.62, 0.86), (0.62, 0.14), (0.26, 0.62), (0.76, 0.62)]];
    const FIVE: &[Stroke] = &[&[
        (0.70, 0.14),
        (0.34, 0.14),
        (0.31, 0.45),
        (0.52, 0.40),
        (0.70, 0.50),
        (0.70, 0.70),
        (0.52, 0.85),
        (0.30, 0.78),
    ]];
    const SIX: &[Stroke] = &[&[
        (0.64, 0.15),
        (0.44, 0.28),
        (0.32, 0.52),
        (0.31, 0.70),
        (0.44, 0.85),
        (0.62, 0.81),
        (0.69, 0.65),
        (0.58, 0.52),
        (0.38, 0.56),
    ]];
    const SEVEN: &[Stroke] = &[&[(0.27, 0.15), (0.73, 0.15), (0.45, 0.86)]];
    const EIGHT: &[Stroke] = &[
        &[
            (0.50, 0.14),
            (0.35, 0.22),
            (0.36, 0.38),
            (0.50, 0.46),
            (0.65, 0.38),
            (0.64, 0.22),
            (0.50, 0.14),
        ],
        &[
            (0.50, 0.46),
            (0.32, 0.56),
            (0.31, 0.75),
            (0.50, 0.86),
            (0.69, 0.75),
            (0.68, 0.56),
            (0.50, 0.46),
        ],
    ];
    const NINE: &[Stroke] = &[&[
        (0.38, 0.84),
        (0.56, 0.72),
        (0.68, 0.48),
        (0.69, 0.30),
        (0.55, 0.15),
        (0.38, 0.19),
        (0.31, 0.35),
        (0.42, 0.48),
        (0.62, 0.44),
    ]];
    match digit {
        0 => ZERO,
        1 => ONE,
        2 => TWO,
        3 => THREE,
        4 => FOUR,
        5 => FIVE,
        6 => SIX,
        7 => SEVEN,
        8 => EIGHT,
        _ => NINE,
    }
}

/// Distance from point `p` to segment `a–b`.
fn segment_distance(p: (f32, f32), a: (f32, f32), b: (f32, f32)) -> f32 {
    let (px, py) = (p.0 - a.0, p.1 - a.1);
    let (dx, dy) = (b.0 - a.0, b.1 - a.1);
    let len_sq = dx * dx + dy * dy;
    let t = if len_sq == 0.0 { 0.0 } else { ((px * dx + py * dy) / len_sq).clamp(0.0, 1.0) };
    let (cx, cy) = (a.0 + t * dx - p.0, a.1 + t * dy - p.1);
    (cx * cx + cy * cy).sqrt()
}

/// Renders one digit with the given random jitter parameters into a
/// 28×28 grayscale image in `[0, 1]`.
fn render(digit: u8, rng: &mut StdRng) -> Vec<f32> {
    let angle = rng.gen_range(-0.22f32..0.22);
    let scale = rng.gen_range(0.80f32..1.08);
    let (tx, ty) = (rng.gen_range(-0.07f32..0.07), rng.gen_range(-0.07f32..0.07));
    let thickness = rng.gen_range(0.035f32..0.065);
    let noise_amp = rng.gen_range(0.0f32..0.05);
    let (sin, cos) = angle.sin_cos();
    // Transform glyph points once.
    let strokes: Vec<Vec<(f32, f32)>> = glyph(digit)
        .iter()
        .map(|stroke| {
            stroke
                .iter()
                .map(|&(x, y)| {
                    let (cx, cy) = (x - 0.5, y - 0.5);
                    let (rx, ry) = (cx * cos - cy * sin, cx * sin + cy * cos);
                    (rx * scale + 0.5 + tx, ry * scale + 0.5 + ty)
                })
                .collect()
        })
        .collect();
    let aa = 0.035f32; // soft edge width
    let mut img = vec![0.0f32; IMAGE_SIDE * IMAGE_SIDE];
    for iy in 0..IMAGE_SIDE {
        for ix in 0..IMAGE_SIDE {
            let p = ((ix as f32 + 0.5) / IMAGE_SIDE as f32, (iy as f32 + 0.5) / IMAGE_SIDE as f32);
            let mut d = f32::MAX;
            for stroke in &strokes {
                for seg in stroke.windows(2) {
                    d = d.min(segment_distance(p, seg[0], seg[1]));
                }
            }
            let mut v = ((thickness + aa - d) / aa).clamp(0.0, 1.0);
            v += rng.gen_range(-noise_amp..=noise_amp);
            // Quantize to the 8-bit grid like real MNIST pixels.
            img[iy * IMAGE_SIDE + ix] = (v.clamp(0.0, 1.0) * 255.0).round() / 255.0;
        }
    }
    img
}

/// Generates `count` labeled digit images, deterministically from `seed`.
/// Labels cycle 0–9 and the items are shuffled.
///
/// # Example
///
/// ```
/// use scnn_nn::data::synthetic::generate;
///
/// let ds = generate(30, 7);
/// assert_eq!(ds.len(), 30);
/// assert_eq!(ds.num_classes(), 10);
/// // Deterministic:
/// assert_eq!(generate(30, 7), ds);
/// ```
pub fn generate(count: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(count * IMAGE_SIDE * IMAGE_SIDE);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let digit = (i % 10) as u8;
        data.extend(render(digit, &mut rng));
        labels.push(digit);
    }
    Dataset::new(data, &[1, IMAGE_SIDE, IMAGE_SIDE], labels)
        .expect("constructed with matching lengths")
        .shuffled(seed ^ 0x00d1_9e57)
}

/// Renders a single digit image with jitter drawn from `seed` — handy for
/// examples that want one test image.
pub fn single(digit: u8, seed: u64) -> Vec<f32> {
    assert!(digit < 10, "digit {digit} out of range");
    render(digit, &mut StdRng::seed_from_u64(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_labeled() {
        let a = generate(40, 1);
        let b = generate(40, 1);
        assert_eq!(a, b);
        let c = generate(40, 2);
        assert_ne!(a, c);
        // All ten classes present.
        let mut seen = [false; 10];
        for i in 0..40 {
            seen[a.label(i) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pixels_are_valid_8bit_grayscale() {
        let ds = generate(20, 3);
        for i in 0..ds.len() {
            for &p in ds.item(i) {
                assert!((0.0..=1.0).contains(&p));
                // Exactly on the 8-bit grid.
                let level = p * 255.0;
                assert!((level - level.round()).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn digits_have_ink() {
        // Every rendered digit should have a meaningful number of bright
        // pixels and plenty of dark background.
        for digit in 0..10u8 {
            let img = single(digit, 5);
            let bright = img.iter().filter(|&&v| v > 0.5).count();
            let dark = img.iter().filter(|&&v| v < 0.1).count();
            assert!((10..400).contains(&bright), "digit {digit}: {bright} bright");
            assert!(dark > 300, "digit {digit}: only {dark} dark");
        }
    }

    #[test]
    fn different_digits_look_different() {
        // Mean per-pixel difference between glyphs must exceed jitter noise.
        let a = single(0, 9);
        let b = single(1, 9);
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum::<f32>() / a.len() as f32;
        assert!(diff > 0.02, "digits 0 and 1 too similar: {diff}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_validates_digit() {
        let _ = single(10, 0);
    }

    #[test]
    fn classes_are_linearly_distinguishable_on_average() {
        // Per-class mean images should differ pairwise — a cheap proxy for
        // learnability.
        let ds = generate(200, 11);
        let mut means = vec![vec![0.0f32; IMAGE_SIDE * IMAGE_SIDE]; 10];
        let mut counts = [0usize; 10];
        for i in 0..ds.len() {
            let l = ds.label(i) as usize;
            counts[l] += 1;
            for (m, &v) in means[l].iter_mut().zip(ds.item(i)) {
                *m += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        for a in 0..10 {
            for b in (a + 1)..10 {
                let diff: f32 =
                    means[a].iter().zip(&means[b]).map(|(x, y)| (x - y).abs()).sum::<f32>()
                        / means[a].len() as f32;
                assert!(diff > 0.01, "classes {a} and {b} mean-diff {diff}");
            }
        }
    }
}

//! Scoped-thread chunked parallel maps for batch evaluation.
//!
//! The dataset-scale loops of this workspace (feature extraction over a
//! dataset, tail evaluation over batches, per-image accuracy sweeps in the
//! bench harnesses) are embarrassingly parallel: every item is independent
//! and the per-item work is milliseconds of stream simulation or linear
//! algebra. This module provides the one primitive they all share — a
//! deterministic chunked map over [`std::thread::scope`] — without pulling
//! in an external work-stealing runtime (the workspace builds offline with
//! vendored dependencies only).
//!
//! # Thread count
//!
//! The worker count comes from the `SCNN_THREADS` environment variable
//! (any positive integer; `1` disables threading entirely) and defaults to
//! [`std::thread::available_parallelism`]. It is re-read on every call so
//! harnesses can sweep it without rebuilding engines.
//!
//! # Determinism
//!
//! Items are split into contiguous chunks, one per worker, and the chunk
//! results are concatenated in order, so the output `Vec` is **identical
//! for every thread count** — the property tests assert byte-equality of
//! whole evaluation pipelines under `SCNN_THREADS=1` vs `SCNN_THREADS=4`.
//! Reductions that are sensitive to association order (e.g. floating-point
//! mean loss) must therefore happen on the ordered output, not inside the
//! workers; [`Network::evaluate`](crate::Network::evaluate) is written that
//! way.
//!
//! # Example
//!
//! ```
//! use scnn_nn::parallel;
//!
//! let squares = parallel::par_map_range(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! // Explicit thread counts give the same answer in the same order.
//! assert_eq!(parallel::par_map_range_threads(3, 8, |i| i * i), squares);
//! ```

/// Name of the environment variable selecting the worker-thread count.
pub const THREADS_ENV: &str = "SCNN_THREADS";

/// The worker-thread count in effect: `SCNN_THREADS` if it parses as a
/// positive integer, otherwise [`std::thread::available_parallelism`]
/// (falling back to 1 when even that is unavailable).
pub fn thread_count() -> usize {
    match std::env::var(THREADS_ENV).ok().and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, usize::from),
    }
}

/// Maps `f` over `0..n` with [`thread_count`] workers, returning results in
/// index order. See [`par_map_range_threads`].
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_range_threads(thread_count(), n, f)
}

/// Maps `f` over `0..n` using at most `threads` scoped workers.
///
/// The index range is split into `threads` contiguous chunks; each worker
/// evaluates its chunk in order and the chunks are concatenated in order,
/// so the result is independent of the thread count. With `threads <= 1`
/// (or one item) everything runs on the calling thread.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins every worker).
pub fn par_map_range_threads<U, F>(threads: usize, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_chunk_map_threads(threads, n, |range| range.map(&f).collect())
}

/// Chunk-granular variant of [`par_map_range_threads`] with the default
/// thread count: `f` receives each worker's contiguous index range and
/// returns that chunk's results in order. Use this when per-worker setup
/// (e.g. cloning a network once per worker instead of once per item) is
/// worth amortizing.
pub fn par_chunk_map<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<U> + Sync,
{
    par_chunk_map_threads(thread_count(), n, f)
}

/// Chunk-granular parallel map: splits `0..n` into at most `threads`
/// contiguous ranges, runs `f` on each range in a scoped worker, and
/// concatenates the returned chunks in range order.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_chunk_map_threads<U, F>(threads: usize, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<U> + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return f(0..n);
    }
    // Worker utilization (SCNN_METRICS): the `parallel/worker` span records
    // each worker's busy wall time, so utilization = sum(worker busy) /
    // (threads × pass wall). Off-path cost is one relaxed load.
    if scnn_obs::metrics_enabled() {
        #[allow(clippy::cast_possible_wrap)]
        scnn_obs::registry().gauge("parallel/threads").set(threads as i64);
    }
    let chunk = n.div_ceil(threads);
    let starts: Vec<usize> = (0..threads).map(|t| t * chunk).take_while(|&s| s < n).collect();
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = starts
            .iter()
            .map(|&start| {
                scope.spawn(move || {
                    let _busy = scnn_obs::span("parallel/worker");
                    f(start..(start + chunk).min(n))
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_for_every_thread_count() {
        let expected: Vec<usize> = (0..101).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 7, 16, 200] {
            assert_eq!(
                par_map_range_threads(threads, 101, |i| i * 3 + 1),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_range_threads(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_range_threads(4, 1, |i| i + 9), vec![9]);
    }

    #[test]
    fn chunk_map_sees_contiguous_partition() {
        let ranges = par_chunk_map_threads(3, 10, |range| vec![(range.start, range.end)]);
        // Concatenated chunk boundaries tile 0..10 in order.
        let mut next = 0;
        for (start, end) in &ranges {
            assert_eq!(*start, next);
            assert!(end > start);
            next = *end;
        }
        assert_eq!(next, 10);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn results_cross_threads() {
        // Non-Copy payloads move back from workers intact.
        let words = par_map_range_threads(4, 6, |i| format!("item-{i}"));
        assert_eq!(words[5], "item-5");
        assert_eq!(words.len(), 6);
    }
}

//! The §VI energy story as a precision sweep: stochastic frame energy
//! halves per dropped bit while the binary baseline shrinks only
//! polynomially, crossing over near 8 bits — rendered as an ASCII chart.
//!
//! ```text
//! cargo run --release --example energy_sweep
//! ```

use scnn::hw::activity::{BinaryActivity, ScActivity};
use scnn::hw::table3::{compute, paper_precisions};
use scnn::hw::CellLibrary;

fn bar(nj: f64, max: f64) -> String {
    let width = (nj / max * 50.0).round() as usize;
    "█".repeat(width.max(1))
}

fn main() {
    let lib = CellLibrary::tsmc65_typical();
    let table =
        compute(&paper_precisions(), &ScActivity::default(), &BinaryActivity::default(), &lib);
    let max =
        table.binary.iter().chain(&table.this_work).map(|p| p.energy_nj).fold(0.0f64, f64::max);

    println!("energy per frame (nJ), {} cell model:\n", lib.name());
    for (b, s) in table.binary.iter().zip(&table.this_work) {
        println!("{}-bit", b.bits);
        println!("  binary    {:>9.2} {}", b.energy_nj, bar(b.energy_nj, max));
        println!("  this work {:>9.2} {}", s.energy_nj, bar(s.energy_nj, max));
    }
    println!();
    for bits in [8u32, 6, 4, 2] {
        println!(
            "gain at {bits}-bit: {:>6.2}×   (paper: 1.23× at 8-bit, 9.8× at 4-bit)",
            table.efficiency_gain(bits).expect("bits in sweep")
        );
    }
    match table.break_even_bits() {
        Some(b) => println!("binary still competitive at {b}-bit (paper: break-even at 8)"),
        None => println!("stochastic design wins at every precision in this sweep"),
    }
}

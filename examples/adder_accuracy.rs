//! Reproduces the accuracy story of §III in miniature: the exhaustive
//! adder comparison of Table 2 plus the S0 rounding behaviour of Fig. 2c.
//!
//! ```text
//! cargo run --release --example adder_accuracy
//! ```

use scnn::bitstream::{BitStream, Precision};
use scnn::rng::AdderScheme;
use scnn::sim::accuracy::{adder_sweep, tff_adder_theoretical_mse};
use scnn::sim::TffAdder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fig. 2c: the initial TFF state picks the rounding direction ==");
    let x = BitStream::parse("0100 1010")?; // 3/8
    let y = BitStream::parse("0010 0010")?; // 1/4

    // (3/8 + 1/4)/2 = 5/16 is not representable in 8 bits.
    let z0 = TffAdder::new(false).add(&x, &y)?;
    let z1 = TffAdder::new(true).add(&x, &y)?;
    println!("S0 = 0: Z = {z0} = {}/8 (rounded down to 1/4)", z0.count_ones());
    println!("S0 = 1: Z = {z1} = {}/8 (rounded up to 3/8)", z1.count_ones());

    println!("\n== Table 2 (exhaustive MSE, every input pair) ==");
    for bits in [8u32, 4] {
        let precision = Precision::new(bits)?;
        println!("\n{bits}-bit precision (N = {}):", precision.stream_len());
        for scheme in AdderScheme::ALL {
            let report = adder_sweep(scheme, precision, 1)?;
            println!("  {:28} mse = {:.3e}", scheme.label(), report.mse);
        }
        println!(
            "  TFF closed form 1/(8N²)      = {:.3e}  ← matches the paper's row exactly",
            tff_adder_theoretical_mse(precision)
        );
    }
    Ok(())
}

//! The full near-sensor pipeline of the paper's Fig. 3: sensor image →
//! ramp-compare analog-to-stochastic conversion → stochastic first conv
//! layer (AND multipliers + TFF adder trees + counters + sign) → binary
//! LeNet-5 remainder → digit.
//!
//! Trains a small base model first (synthetic digits unless real MNIST IDX
//! files sit in `data/mnist/`), then classifies test images through the
//! hybrid stack at 8-bit and 4-bit stream precision.
//!
//! ```text
//! cargo run --release --example near_sensor_pipeline
//! ```

use scnn::bitstream::Precision;
use scnn::core::{
    retrain, train_base, FirstLayer, RetrainConfig, ScOptions, StochasticConvLayer, TrainConfig,
};
use scnn::nn::data::load_or_synthesize;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train, test, source) = load_or_synthesize(Path::new("data/mnist"), 800, 200, 99)?;
    println!("data source: {source} ({} train / {} test)", train.len(), test.len());

    println!("\n[1/3] training the float base model (TensorFlow's role, §V-A)…");
    let base = train_base(&train, &test, &TrainConfig { epochs: 3, ..TrainConfig::default() })?;
    println!(
        "      base misclassification: {:.2}%",
        base.evaluation.misclassification_rate() * 100.0
    );

    for bits in [8u32, 4] {
        let precision = Precision::new(bits)?;
        println!(
            "\n[2/3] building the stochastic first layer at {precision} (N = {} cycles)…",
            precision.stream_len()
        );
        let engine =
            StochasticConvLayer::from_conv(base.conv1(), precision, ScOptions::this_work())?;
        println!("      engine: {}", engine.label());

        println!("[3/3] retraining the binary tail on frozen stochastic features (§V-B)…");
        let (mut hybrid, report) =
            retrain(Box::new(engine), base.tail_clone(), &train, &test, &RetrainConfig::default())?;
        println!(
            "      misclassification: {:.2}% before retraining → {:.2}% after",
            report.before.misclassification_rate() * 100.0,
            report.after.misclassification_rate() * 100.0
        );

        // Classify a handful of sensor frames end to end.
        print!("      sample classifications:");
        for i in 0..8 {
            let predicted = hybrid.classify_image(test.item(i))?;
            let truth = test.label(i);
            print!(" {predicted}{}", if predicted == usize::from(truth) { "✓" } else { "✗" });
        }
        println!();
    }
    Ok(())
}

//! The §V-B retraining experiment in isolation: quantize the first layer
//! hard (2–4 bits), watch accuracy fall, retrain the binary remainder,
//! watch it recover — the paper's key enabler for short bit-streams.
//!
//! ```text
//! cargo run --release --example retraining
//! ```

use scnn::bitstream::Precision;
use scnn::core::{
    retrain, train_base, BinaryConvLayer, FirstLayer, RetrainConfig, ScOptions,
    StochasticConvLayer, TrainConfig,
};
use scnn::nn::data::load_or_synthesize;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train, test, source) = load_or_synthesize(Path::new("data/mnist"), 1000, 300, 5)?;
    println!("data source: {source}");
    let base = train_base(&train, &test, &TrainConfig { epochs: 3, ..TrainConfig::default() })?;
    println!(
        "float base model: {:.2}% misclassification\n",
        base.evaluation.misclassification_rate() * 100.0
    );
    println!(
        "{:>20} {:>18} {:>18} {:>12}",
        "engine", "no retraining", "after retraining", "recovered"
    );
    for bits in [8u32, 4, 3, 2] {
        let precision = Precision::new(bits)?;
        let engines: Vec<Box<dyn FirstLayer>> = vec![
            Box::new(BinaryConvLayer::from_conv(base.conv1(), precision, 0.0)?),
            Box::new(StochasticConvLayer::from_conv(
                base.conv1(),
                precision,
                ScOptions::this_work(),
            )?),
        ];
        for engine in engines {
            let label = engine.label();
            let (_, report) = retrain(
                engine,
                base.tail_clone(),
                &train,
                &test,
                &RetrainConfig { epochs: 3, ..RetrainConfig::default() },
            )?;
            println!(
                "{:>20} {:>17.2}% {:>17.2}% {:>+11.2}pp",
                label,
                report.before.misclassification_rate() * 100.0,
                report.after.misclassification_rate() * 100.0,
                report.recovered_points(),
            );
        }
    }
    println!("\n(paper §V-B: quantization/conversion noise costs several points of accuracy");
    println!(" without retraining — up to 6.85% at 4-bit binary — and retraining the binary");
    println!(" tail recovers it; only possible because the rest of the NN stays binary)");
    Ok(())
}

//! Quickstart: the stochastic computing primitives from the paper's
//! Figs. 1 and 2, in a few lines each.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use scnn::bitstream::{BitStream, Precision, Unipolar};
use scnn::rng::{Ramp, Sng, Sobol2};
use scnn::sim::{Multiplier, MuxAdder, TffAdder, TffHalver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== stochastic numbers (Fig. 1) ==");
    // A bit-stream encodes a probability: 001011 ↦ 3/6 = 0.5.
    let x = BitStream::parse("001011")?;
    println!("X = {x}  encodes p = {}", x.unipolar());

    // Multiplication is a single AND gate (uncorrelated inputs).
    let precision = Precision::new(8)?; // N = 256 stream bits
    let mut x_sng = Sng::new(Ramp::new(8)?);
    let mut w_sng = Sng::new(Sobol2::new(8)?);
    let a = x_sng.generate_unipolar(Unipolar::new(0.75)?, precision);
    let b = w_sng.generate_unipolar(Unipolar::new(0.5)?, precision);
    let product = Multiplier.multiply(&a, &b)?;
    println!(
        "0.75 × 0.5 = {:.4} (exact 0.375) — one AND gate, {} cycles",
        product.unipolar(),
        precision.stream_len()
    );

    println!("\n== the conventional MUX adder discards bits (Fig. 1b) ==");
    let select = BitStream::from_fn(precision.stream_len(), |i| i % 2 == 0);
    let mux_sum = MuxAdder.add(&a, &b, &select)?;
    println!("(0.75 + 0.5)/2 via MUX  = {:.4} (exact 0.625)", mux_sum.unipolar());

    println!("\n== the paper's TFF adder is exact (Fig. 2b) ==");
    let tff_sum = TffAdder::new(false).add(&a, &b)?;
    println!("(0.75 + 0.5)/2 via TFF  = {:.4} (exact 0.625)", tff_sum.unipolar());

    // The worked example from the paper, bit for bit.
    let x = BitStream::parse("0110 0011 0101 0111 1000")?; // 1/2
    let y = BitStream::parse("1011 1111 0101 0111 1111")?; // 4/5
    let z = TffAdder::new(false).add(&x, &y)?;
    println!("paper example: Z = {z} = {}/20 (expected 13/20)", z.count_ones());

    println!("\n== the p/2 halver needs no random source (Fig. 2a) ==");
    let a = BitStream::parse("1111 1100")?; // 6/8
    let halved = TffHalver::new(false).halve(&a);
    println!("(6/8)/2 = {}/8", halved.count_ones());

    println!("\n== and it tolerates auto-correlated (ramp-converted) inputs ==");
    let thermometer = BitStream::parse("1111 1000")?; // same 5/8, worst-case ordering
    let shuffled = BitStream::parse("1011 0101")?; // 5/8 again
    let t1 = TffAdder::new(false).add(&thermometer, &BitStream::zeros(8))?;
    let t2 = TffAdder::new(false).add(&shuffled, &BitStream::zeros(8))?;
    println!(
        "halving 5/8 as thermometer: {}/8, as shuffled: {}/8 — identical",
        t1.count_ones(),
        t2.count_ones()
    );
    Ok(())
}

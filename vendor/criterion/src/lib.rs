//! Vendored, dependency-free stand-in for the subset of the [`criterion`] API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal wall-clock benchmark runner: each `Bencher::iter` call warms up,
//! then times batches until the configured measurement budget (default 1 s,
//! shrunk by `--test` / `--quick` / `SCNN_BENCH_QUICK=1` to a single batch)
//! is spent, and prints `name  time/iter` lines. No statistics, plots, or
//! baselines — just enough to keep `cargo bench` targets compiled, runnable,
//! and honest about relative cost.

use std::time::{Duration, Instant};

/// True when the process was asked for a smoke run rather than a measurement
/// run: `cargo test` passes `--test`, CI sets `SCNN_BENCH_QUICK=1`, and
/// humans can pass `--quick`.
fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
        || std::env::var_os("SCNN_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// Top-level benchmark driver, handed to every `criterion_group!` target.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { quick: quick_mode() }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            quick: self.quick,
            measurement_time: Duration::from_secs(1),
            _criterion: std::marker::PhantomData,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.quick, Duration::from_secs(1), &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    quick: bool,
    measurement_time: Duration,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stub sizes runs by time only.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.quick, self.measurement_time, &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.quick, self.measurement_time, &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in this stub; consumes the group like the
    /// real API so call-sites stay source-compatible).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter value.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    quick: bool,
    budget: Duration,
    /// Mean nanoseconds per iteration of the most recent `iter` call.
    pub last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, batching calls until the measurement budget is spent
    /// (a single batch in quick mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: grow the batch until it takes ≥ ~5 ms so
        // Instant overhead stays negligible for nanosecond-scale routines.
        let mut batch: u64 = 1;
        let mut warm_elapsed;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            warm_elapsed = t.elapsed();
            if self.quick || warm_elapsed >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        if self.quick {
            self.last_ns_per_iter = warm_elapsed.as_nanos() as f64 / batch as f64;
            return;
        }
        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        let deadline = self.budget;
        while spent < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            spent += t.elapsed();
            iters += batch;
        }
        self.last_ns_per_iter = spent.as_nanos() as f64 / iters as f64;
    }
}

fn run_one(name: &str, quick: bool, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { quick, budget, last_ns_per_iter: 0.0 };
    f(&mut b);
    println!("bench: {name:<50} {}", format_ns(b.last_ns_per_iter));
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>10.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>10.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>10.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:>10.1} ns/iter")
    }
}

/// Groups benchmark functions into one runner function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b =
            Bencher { quick: true, budget: Duration::from_millis(1), last_ns_per_iter: 0.0 };
        b.iter(|| std::hint::black_box(1u64 + 1));
        // quick mode still records a non-negative time
        assert!(b.last_ns_per_iter >= 0.0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion { quick: true };
        let mut g = c.benchmark_group("t");
        g.sample_size(10).measurement_time(Duration::from_millis(1));
        g.bench_function("one", |b| b.iter(|| 2 + 2));
        g.bench_with_input(BenchmarkId::new("two", 8), &3, |b, &x| b.iter(|| x * x));
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 1));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).0, "f/4");
        assert_eq!(BenchmarkId::from_parameter("p").0, "p");
    }
}

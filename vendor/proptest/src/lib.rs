//! Vendored, dependency-free stand-in for the subset of the [`proptest`] API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal property-testing harness: strategies are samplers (no shrinking),
//! the case count defaults to 64 and can be overridden with the
//! `PROPTEST_CASES` environment variable or `ProptestConfig::with_cases`, and
//! every failure report includes the deterministic per-test seed and case
//! index so a failing case can be replayed by rerunning the test.
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assert_ne!`], [`prop_oneof!`], range and tuple strategies,
//! [`strategy::Just`], `any::<T>()`, [`collection::vec`], and
//! [`sample::Index`].

use std::fmt;

pub mod test_runner {
    //! The failing-case error type and the deterministic test RNG.

    use std::fmt;

    /// Error produced by a failing property (via the `prop_assert!` family).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic per-test RNG (SplitMix64 core), seeded from the test
    /// name so failures reproduce across runs and machines.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
        seed: u64,
    }

    impl TestRng {
        /// Builds the RNG from a test name (FNV-1a hash of the bytes).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            Self { state: h, seed: h }
        }

        /// The seed this RNG started from (reported on failure).
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below 0");
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX % bound) - 1;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// Runner configuration; only the case count is honoured by this stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        Self { cases }
    }
}

/// A source of values for one property input. Samplers only — no shrinking.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
    {
        strategy::Map { source: self, map: f }
    }

    /// Chains into a dependent strategy produced by `f`.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> strategy::FlatMap<Self, F>
    where
        Self: Sized,
    {
        strategy::FlatMap { source: self, flat_map: f }
    }
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use super::Strategy;

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) source: S,
        pub(crate) flat_map: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.flat_map)(self.source.sample(rng)).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    /// Builds a [`Union`]; used by the `prop_oneof!` macro expansion.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn union<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

pub use strategy::Just;

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                // The cast and the fused arithmetic can both round up to
                // `end`; the half-open contract excludes it.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "arbitrary" strategy, used by [`any`].
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<bool>()`, `any::<u64>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::test_runner::TestRng;
    use super::Strategy;

    /// Admissible length specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Positional sampling helpers.
pub mod sample {
    use super::test_runner::TestRng;
    use super::Arbitrary;

    /// An abstract index into a collection of yet-unknown length: stores a
    /// fraction in `[0, 1)` and scales it at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(f64);

    impl Index {
        /// Projects onto `[0, len)`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 * len as f64) as usize).min(len - 1)
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.unit_f64())
        }
    }
}

/// Everything the `proptest!` macro and common call-sites need.
pub mod prelude {
    pub use crate::strategy::Just;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        Strategy,
    };
}

/// Displays a value list for failure messages.
#[doc(hidden)]
pub fn format_failure(test: &str, seed: u64, case: u32, msg: &dyn fmt::Display) -> String {
    format!("property `{test}` failed at case {case} (seed {seed:#x}): {msg}")
}

/// Asserts a condition inside a `proptest!` body, with optional format args.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$(::std::boxed::Box::new($strat)),+])
    };
}

/// Defines property tests: each `fn name(input in strategy, ..) { body }`
/// becomes a `#[test]` that samples and checks `cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let seed = rng.seed();
            for case in 0..config.cases {
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("{}", $crate::format_failure(stringify!($name), seed, case, &e));
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in -1.5f64..1.5, z in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y));
            prop_assert!(z <= 4);
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(any::<bool>(), 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            let doubled = (1u32..5).prop_map(|n| n * 2);
            let d = Strategy::sample(&doubled, &mut crate::test_runner::TestRng::deterministic("x"));
            prop_assert!(d % 2 == 0 && d < 10);
        }

        #[test]
        fn oneof_picks_each_alternative(pick in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&pick));
        }

        #[test]
        fn index_stays_in_bounds(idx in any::<crate::sample::Index>(), len in 1usize..50) {
            prop_assert!(idx.index(len) < len);
        }
    }

    #[test]
    fn failure_reports_case_and_seed() {
        let err = std::panic::catch_unwind(|| {
            proptest! {
                #[allow(dead_code)]
                fn always_fails(x in 0u8..10) {
                    prop_assert!(x > 200, "x was {}", x);
                }
            }
            always_fails();
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails"), "got: {msg}");
        assert!(msg.contains("seed"), "got: {msg}");
    }

    #[test]
    fn flat_map_dependent_lengths() {
        let strat = (1usize..5).prop_flat_map(|len| {
            crate::collection::vec(any::<u8>(), len..=len).prop_map(move |v| (len, v))
        });
        let mut rng = crate::test_runner::TestRng::deterministic("flat_map");
        for _ in 0..100 {
            let (len, v) = Strategy::sample(&strat, &mut rng);
            assert_eq!(v.len(), len);
        }
    }
}

//! Vendored, dependency-free stand-in for the subset of the [`rand`] 0.8 API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal deterministic implementation: [`rngs::StdRng`] is an xoshiro256++
//! generator seeded through SplitMix64 (the same construction the real
//! `rand` ecosystem uses for small-state generators). It is **not** the same
//! bit-stream as upstream `StdRng` (which is ChaCha12) — callers in this
//! workspace only rely on seeded determinism and uniformity, never on exact
//! upstream values.
//!
//! Supported surface:
//!
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`]
//! * [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`] over integer and
//!   float ranges (half-open and inclusive)
//! * [`seq::SliceRandom::shuffle`] and [`seq::SliceRandom::choose`]

/// Core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        f64::sample(self) < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of seeded generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed byte-array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for b in seed.as_mut().iter_mut() {
            // One SplitMix64 output per byte keeps the expansion simple and
            // well mixed even for tiny seed values like 0 and 1.
            *b = (sm.next() >> 56) as u8;
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Types samplable from a generator's "standard" distribution.
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that can be sampled uniformly, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = <$t as Standard>::sample(rng);
                let v = self.start + u * (self.end - self.start);
                // `start + u * span` can round up to `end` even though
                // u < 1; the half-open contract excludes it.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Seedable generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic, seedable standard generator (xoshiro256++ here; the
    /// upstream crate uses ChaCha12 — see the crate docs for the contract).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 0x6A09E667F3BCC909, 0xBB67AE8584CAA73B, 1];
            }
            Self { s }
        }
    }
}

/// Slice sampling and shuffling, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Shuffle/choose extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0usize..=5);
            assert!(i <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_f32_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_uniformish() {
        let mut rng = StdRng::seed_from_u64(11);
        let items = [1, 2, 3, 4];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*items.choose(&mut rng).expect("non-empty"));
        }
        assert_eq!(seen.len(), 4);
    }
}
